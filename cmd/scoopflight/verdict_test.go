package main

import (
	"strings"
	"testing"

	"scoop/internal/core"
	"scoop/internal/trace"
)

// verdictFixture holds two settled queries (one complete, one
// degraded) plus a retry event, the §19 reliability slice of a trace.
func verdictFixture(t *testing.T) string {
	return writeTrace(t, []trace.Event{
		{T: 1000, Kind: trace.QueryRetry, Node: 0, ID: 3, Value: 2, Aux: 1},
		{T: 2000, Kind: trace.QueryVerdict, Node: 0, ID: 3,
			Flag: uint8(core.VerdictComplete), Value: 2, Aux: 2},
		{T: 3000, Kind: trace.QueryVerdict, Node: 0, ID: 4,
			Flag: uint8(core.VerdictDegraded), Value: 1, Aux: 3},
		{T: 4000, Kind: trace.QueryVerdict, Node: 0, ID: 5,
			Flag: uint8(core.VerdictFailed), Value: 0, Aux: 2},
	})
}

func TestVerdictFilter(t *testing.T) {
	out := runCLI(t, "-verdict", "degraded", verdictFixture(t))
	if !strings.Contains(out, "events: 1 kept of 4") {
		t.Fatalf("verdict filter wrong:\n%s", out)
	}
	out = runCLI(t, "-verdict", "complete", "-print", "-1", verdictFixture(t))
	if !strings.Contains(out, `"kind":"query-verdict"`) {
		t.Fatalf("verdict filter printed nothing:\n%s", out)
	}
}

func TestVerdictCompletenessSummary(t *testing.T) {
	out := runCLI(t, verdictFixture(t))
	// 2 usable (complete + degraded) of 3 settled.
	if !strings.Contains(out, "queries: completeness 0.667 over 3 settled") {
		t.Fatalf("completeness line missing:\n%s", out)
	}
	for _, want := range []string{"complete=1", "degraded=1", "failed=1", "partial=0"} {
		if !strings.Contains(out, want) {
			t.Errorf("verdict census missing %q:\n%s", want, out)
		}
	}
}

func TestVerdictFilterRejectsBadName(t *testing.T) {
	for _, name := range []string{"bogus", "open"} {
		var sb strings.Builder
		if err := run([]string{"-verdict", name, verdictFixture(t)}, &sb); err == nil {
			t.Errorf("-verdict %s accepted", name)
		}
	}
}
