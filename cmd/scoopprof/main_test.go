package main

import (
	"path/filepath"
	"strings"
	"testing"

	"scoop/internal/prof"
)

// artifactFile writes a valid single-profile artifact whose radio
// phase burns wallNs out of a 2×wallNs loop.
func artifactFile(t *testing.T, name string, radioNs int64) string {
	t.Helper()
	loop := 2 * radioNs
	p := prof.Profile{
		N: 65, VirtualS: 600, LoopNs: loop, Events: 1000, Coverage: 1.0,
		DepthP50: 4, DepthP99: 16, DepthMax: 31,
		Phases: []prof.PhaseResult{
			{Phase: "radio", WallNs: radioNs, Share: 0.5, Events: 600, MaxNs: 900},
			{Phase: "mac-timer", WallNs: loop - radioNs, Share: 0.5, Events: 400, MaxNs: 700},
		},
	}
	path := filepath.Join(t.TempDir(), name)
	if err := prof.WriteFile(path, prof.Artifact{Profiles: []prof.Profile{p}}); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffExitCodes(t *testing.T) {
	old := artifactFile(t, "old.json", 1_000_000)
	same := artifactFile(t, "same.json", 1_050_000)   // +5%
	worse := artifactFile(t, "worse.json", 1_500_000) // +50%

	var sb strings.Builder
	if got := run([]string{"-diff", old, same, "-threshold", "10"}, &sb); got != 0 {
		t.Errorf("within-threshold diff exited %d, want 0", got)
	}
	if !strings.Contains(sb.String(), "profile diff passed") {
		t.Errorf("missing pass message: %q", sb.String())
	}
	if got := run([]string{"-diff", old, worse, "-threshold", "10"}, &sb); got == 0 {
		t.Error("50% regression passed a 10% threshold")
	}
	// A generous threshold lets the same pair through.
	if got := run([]string{"-diff", old, worse, "-threshold", "120"}, &sb); got != 0 {
		t.Errorf("regression under a 120%% threshold exited %d, want 0", got)
	}
	// Wrong arity is a usage error.
	if got := run([]string{"-diff", old}, &sb); got != 2 {
		t.Errorf("one-artifact diff exited %d, want 2", got)
	}
}

func TestSchemaMode(t *testing.T) {
	good := artifactFile(t, "good.json", 1_000_000)
	var sb strings.Builder
	if got := run([]string{"-schema", good}, &sb); got != 0 {
		t.Errorf("valid artifact failed schema check: %d", got)
	}
	if !strings.Contains(sb.String(), "schema ok") {
		t.Errorf("missing ok message: %q", sb.String())
	}
	if got := run([]string{"-schema", filepath.Join(t.TempDir(), "absent.json")}, &sb); got != 1 {
		t.Error("missing artifact passed schema check")
	}
}

func TestPromMode(t *testing.T) {
	art := artifactFile(t, "a.json", 1_000_000)
	var sb strings.Builder
	if got := run([]string{"-prom", art}, &sb); got != 0 {
		t.Fatalf("prom mode exited %d", got)
	}
	out := sb.String()
	for _, want := range []string{
		`scoop_profile_phase_wall_nanoseconds{n="65",phase="radio"} 1e+06`,
		`scoop_profile_loop_nanoseconds{n="65"} 2e+06`,
		`scoop_profile_coverage{n="65"} 1`,
		"# TYPE scoop_profile_phase_share gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestBadSizes(t *testing.T) {
	var sb strings.Builder
	if got := run([]string{"-sizes", "65,potato"}, &sb); got != 2 {
		t.Errorf("bad -sizes exited %d, want 2", got)
	}
	if got := run([]string{"stray"}, &sb); got != 2 {
		t.Errorf("stray positional exited %d, want 2", got)
	}
}

// End-to-end smoke: profile a tiny scenario, write and re-validate the
// artifact. Uses a non-probe size so the duration falls back to the
// short default.
func TestRunModeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full simulation")
	}
	out := filepath.Join(t.TempDir(), "profile.json")
	var sb strings.Builder
	if got := run([]string{"-sizes", "20", "-out", out}, &sb); got != 0 {
		t.Fatalf("run mode exited %d:\n%s", got, sb.String())
	}
	if !strings.Contains(sb.String(), "phase") || !strings.Contains(sb.String(), "radio") {
		t.Errorf("table missing phases:\n%s", sb.String())
	}
	a, err := prof.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.Profiles[0].Coverage < prof.MinCoverage {
		t.Fatalf("coverage %.3f below %.2f", a.Profiles[0].Coverage, prof.MinCoverage)
	}
}
