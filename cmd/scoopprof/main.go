// Command scoopprof runs the wall-clock attribution profiler
// (internal/prof, DESIGN.md §17) over full SCOOP scenarios and
// maintains the committed BENCH_profile.json artifact: which phases of
// the event loop — radio delivery, MAC timers, receive paths, reindex,
// planner, aggregation, dissemination, trace emission — the simulator
// actually spends its time in, with heap-depth and scheduled→fired
// dwell histograms.
//
//	scoopprof                                # profile N ∈ {65,250,1000}, print tables
//	scoopprof -sizes 65 -out BENCH_profile.json
//	scoopprof -diff old.json new.json -threshold 10
//	                                         # exit 1 if any phase's
//	                                         # ns-per-virtual-second grew >10%
//	scoopprof -schema BENCH_profile.json     # structural check only
//	scoopprof -prom BENCH_profile.json       # Prometheus text exposition
//
// Wall times are machine-dependent: the committed artifact is a
// trajectory record and a relative-shares document, not a CI-gated
// number. The -diff mode normalises by virtual seconds so artifacts
// from different run lengths compare; use it between artifacts from
// the same machine.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"scoop/internal/exp"
	"scoop/internal/netsim"
	"scoop/internal/perfbench"
	"scoop/internal/prof"
	"scoop/internal/telemetry"
)

// parseArgs runs the flag set over args, collecting positionals that
// appear between flags (the stdlib stops at the first positional, which
// would make `scoopprof -diff a b -threshold 10` silently ignore the
// threshold).
func parseArgs(fs *flag.FlagSet, args []string) ([]string, error) {
	var pos []string
	rest := args
	for {
		if err := fs.Parse(rest); err != nil {
			return nil, err
		}
		if fs.NArg() == 0 {
			return pos, nil
		}
		pos = append(pos, fs.Arg(0))
		rest = fs.Args()[1:]
	}
}

// scenarioDuration returns the virtual run length for one profile
// size, matching the sim-rate probe points so the artifact measures
// the same scenarios BENCH_scale.json records throughput for.
func scenarioDuration(n int) netsim.Time {
	for _, p := range perfbench.SimRates() {
		if p.N == n {
			return p.Duration
		}
	}
	return 4 * netsim.Minute
}

// profileSize runs one profiled scenario and returns its artifact
// entry.
func profileSize(n int) (prof.Profile, error) {
	cfg := exp.Default()
	cfg.N = n
	cfg.Topology = "grid"
	cfg.Duration = scenarioDuration(n)
	cfg.Warmup = cfg.Duration / 4
	cfg.Trials = 1
	cfg.Seed = 3
	cfg.Profile = true
	res, err := exp.Run(cfg)
	if err != nil {
		return prof.Profile{}, fmt.Errorf("scoopprof: N=%d: %w", n, err)
	}
	snap := res.PerTrial[0].Prof
	if snap == nil {
		return prof.Profile{}, fmt.Errorf("scoopprof: N=%d: no profile snapshot", n)
	}
	return snap.Profile(n, float64(cfg.Duration)/1000), nil
}

// promFamilies renders an artifact as Prometheus metric families, the
// export surface a scrape endpoint would serve.
func promFamilies(a prof.Artifact) []telemetry.Family {
	wall := telemetry.Family{Name: "scoop_profile_phase_wall_nanoseconds",
		Help: "Wall time attributed to each event-loop phase.", Type: "gauge"}
	events := telemetry.Family{Name: "scoop_profile_phase_events_total",
		Help: "Events attributed to each phase.", Type: "gauge"}
	share := telemetry.Family{Name: "scoop_profile_phase_share",
		Help: "Fraction of attributed wall time per phase.", Type: "gauge"}
	loop := telemetry.Family{Name: "scoop_profile_loop_nanoseconds",
		Help: "Total event-loop wall time per scenario.", Type: "gauge"}
	cover := telemetry.Family{Name: "scoop_profile_coverage",
		Help: "Fraction of loop time attributed to named phases.", Type: "gauge"}
	for _, p := range a.Profiles {
		nLabel := telemetry.Label{Name: "n", Value: strconv.Itoa(p.N)}
		loop.Samples = append(loop.Samples,
			telemetry.Sample{Labels: []telemetry.Label{nLabel}, Value: float64(p.LoopNs)})
		cover.Samples = append(cover.Samples,
			telemetry.Sample{Labels: []telemetry.Label{nLabel}, Value: p.Coverage})
		for _, ph := range p.Phases {
			labels := []telemetry.Label{nLabel, {Name: "phase", Value: ph.Phase}}
			wall.Samples = append(wall.Samples,
				telemetry.Sample{Labels: labels, Value: float64(ph.WallNs)})
			events.Samples = append(events.Samples,
				telemetry.Sample{Labels: labels, Value: float64(ph.Events)})
			share.Samples = append(share.Samples,
				telemetry.Sample{Labels: labels, Value: ph.Share})
		}
	}
	return []telemetry.Family{wall, events, share, loop, cover}
}

func run(args []string, out io.Writer) int {
	fs := flag.NewFlagSet("scoopprof", flag.ContinueOnError)
	sizes := fs.String("sizes", "65,250,1000", "comma-separated network sizes to profile")
	outPath := fs.String("out", "", "write the profile artifact to this path")
	diff := fs.Bool("diff", false, "compare two artifacts: scoopprof -diff old.json new.json")
	threshold := fs.Float64("threshold", 10, "with -diff: max per-phase ns-per-virtual-second growth, percent")
	schema := fs.String("schema", "", "validate this artifact's structure and exit")
	prom := fs.String("prom", "", "render this artifact as a Prometheus text exposition")
	pos, err := parseArgs(fs, args)
	if err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}

	switch {
	case *diff:
		if len(pos) != 2 {
			fmt.Fprintln(os.Stderr, "scoopprof: -diff needs exactly two artifacts (old new)")
			return 2
		}
		old, err := prof.ReadFile(pos[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "scoopprof:", err)
			return 1
		}
		fresh, err := prof.ReadFile(pos[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "scoopprof:", err)
			return 1
		}
		if err := prof.DiffError(prof.Diff(old, fresh, *threshold)); err != nil {
			fmt.Fprintln(os.Stderr, "scoopprof:", err)
			return 1
		}
		fmt.Fprintf(out, "profile diff passed: %s vs %s within %.0f%%\n", pos[0], pos[1], *threshold)
		return 0

	case *schema != "":
		a, err := prof.ReadFile(*schema)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scoopprof:", err)
			return 1
		}
		if err := a.Validate(); err != nil {
			fmt.Fprintln(os.Stderr, "scoopprof:", err)
			return 1
		}
		fmt.Fprintf(out, "%s: %d profiles, schema ok\n", *schema, len(a.Profiles))
		return 0

	case *prom != "":
		a, err := prof.ReadFile(*prom)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scoopprof:", err)
			return 1
		}
		if err := telemetry.WriteExposition(out, promFamilies(a)); err != nil {
			fmt.Fprintln(os.Stderr, "scoopprof:", err)
			return 1
		}
		return 0
	}

	if len(pos) != 0 {
		fmt.Fprintf(os.Stderr, "scoopprof: unexpected arguments %v\n", pos)
		return 2
	}
	var a prof.Artifact
	for _, field := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || n < 2 {
			fmt.Fprintf(os.Stderr, "scoopprof: bad size %q\n", field)
			return 2
		}
		fmt.Fprintf(os.Stderr, "profiling N=%d (%.0fs virtual)...\n", n, float64(scenarioDuration(n))/1000)
		p, err := profileSize(n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := p.WriteTable(out); err != nil {
			fmt.Fprintln(os.Stderr, "scoopprof:", err)
			return 1
		}
		fmt.Fprintln(out)
		a.Profiles = append(a.Profiles, p)
	}
	if err := a.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "scoopprof:", err)
		return 1
	}
	if *outPath != "" {
		if err := prof.WriteFile(*outPath, a); err != nil {
			fmt.Fprintln(os.Stderr, "scoopprof:", err)
			return 1
		}
		fmt.Fprintf(out, "wrote %s (%d profiles)\n", *outPath, len(a.Profiles))
	}
	return 0
}

func main() { os.Exit(run(os.Args[1:], os.Stdout)) }
