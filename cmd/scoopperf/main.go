// Command scoopperf measures the simulator's hot-path performance —
// the micro benches and end-to-end sim-rate probes defined in
// internal/perfbench — and maintains the committed BENCH_scale.json
// artifact, the perf trajectory the scale tier is gated on.
//
//	scoopperf -out BENCH_scale.json          # (re)baseline
//	scoopperf -baseline BENCH_scale.json     # CI gate: allocs/op +15% fails
//	scoopperf -baseline BENCH_scale.json -out BENCH_scale.new.json
//	                                         # gate, and write the fresh
//	                                         # numbers for re-baselining
//	scoopperf -rates-only -out BENCH_scale.json
//	                                         # refresh only the sim-rate
//	                                         # probes, keeping the benches
//	                                         # already in the artifact
//
// allocs/op is gated for every bench: it is a property of the code.
// ns/op is additionally gated (20%) for the index/rebuild/* benches —
// single-threaded CPU loops stable enough to hold to a time budget.
// Other ns/op numbers and sim-seconds-per-wall-second are recorded so
// the trajectory is readable, but they depend on the machine and
// never fail the gate.
package main

import (
	"flag"
	"fmt"
	"os"

	"scoop/internal/perfbench"
)

func run(args []string) int {
	fs := flag.NewFlagSet("scoopperf", flag.ContinueOnError)
	out := fs.String("out", "", "write the fresh artifact to this path")
	baseline := fs.String("baseline", "", "gate allocs/op against this committed artifact")
	ratesOnly := fs.Bool("rates-only", false, "re-run only the sim-rate probes, merging them into the -out artifact's existing benches")
	if err := fs.Parse(args); err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		return 2
	}
	if *out == "" && *baseline == "" {
		fmt.Fprintln(os.Stderr, "scoopperf: nothing to do; pass -out and/or -baseline")
		return 2
	}
	if *ratesOnly {
		// The micro benches are skipped, so there is nothing to gate;
		// -rates-only exists to refresh the machine-dependent numbers
		// cheaply.
		if *baseline != "" {
			fmt.Fprintln(os.Stderr, "scoopperf: -rates-only skips the gated benches; drop -baseline")
			return 2
		}
		if *out == "" {
			fmt.Fprintln(os.Stderr, "scoopperf: -rates-only needs -out")
			return 2
		}
		a, err := perfbench.ReadFile(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scoopperf:", err)
			return 1
		}
		rates, err := perfbench.CollectRates(func(line string) { fmt.Fprintln(os.Stderr, "  "+line) })
		if err != nil {
			fmt.Fprintln(os.Stderr, "scoopperf:", err)
			return 1
		}
		a.SimRates = rates
		if err := perfbench.WriteFile(*out, a); err != nil {
			fmt.Fprintln(os.Stderr, "scoopperf:", err)
			return 1
		}
		fmt.Printf("wrote %s (%d benches kept, %d sim rates refreshed)\n", *out, len(a.Benches), len(a.SimRates))
		return 0
	}
	a, err := perfbench.Collect(func(line string) { fmt.Fprintln(os.Stderr, "  "+line) })
	if err != nil {
		fmt.Fprintln(os.Stderr, "scoopperf:", err)
		return 1
	}
	if *out != "" {
		if err := perfbench.WriteFile(*out, a); err != nil {
			fmt.Fprintln(os.Stderr, "scoopperf:", err)
			return 1
		}
		fmt.Printf("wrote %s (%d benches, %d sim rates)\n", *out, len(a.Benches), len(a.SimRates))
	}
	if *baseline != "" {
		base, err := perfbench.ReadFile(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scoopperf:", err)
			return 1
		}
		if err := perfbench.GateError(perfbench.Gate(a, base)); err != nil {
			fmt.Fprintln(os.Stderr, "scoopperf:", err)
			return 1
		}
		fmt.Printf("perf gate passed against %s (allocs/op tolerance %.0f%%, %s* ns/op tolerance %.0f%%)\n",
			*baseline, 100*perfbench.GateTolerance,
			perfbench.NsGatedPrefix, 100*perfbench.NsGateTolerance)
	}
	return 0
}

func main() { os.Exit(run(os.Args[1:])) }
