package main

import (
	"path/filepath"
	"testing"

	"scoop/internal/perfbench"
)

// Flag-validation paths only: the measurement paths run full
// simulations and are exercised by CI's bench job, not unit tests.
func TestRunRejectsBadFlagCombinations(t *testing.T) {
	art := filepath.Join(t.TempDir(), "bench.json")
	if err := perfbench.WriteFile(art, perfbench.Artifact{
		Benches: []perfbench.BenchResult{{Name: "x", AllocsPerOp: 1}},
	}); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no flags", nil, 2},
		{"rates-only without out", []string{"-rates-only", "-baseline", art}, 2},
		{"rates-only with baseline", []string{"-rates-only", "-out", art, "-baseline", art}, 2},
		{"bad flag", []string{"-nonsense"}, 2},
	}
	for _, c := range cases {
		if got := run(c.args); got != c.want {
			t.Errorf("%s: run(%v) = %d, want %d", c.name, c.args, got, c.want)
		}
	}
}

// -rates-only must refuse to run against a missing artifact rather
// than silently discarding the committed benches.
func TestRatesOnlyNeedsExistingArtifact(t *testing.T) {
	missing := filepath.Join(t.TempDir(), "absent.json")
	if got := run([]string{"-rates-only", "-out", missing}); got != 1 {
		t.Errorf("run(-rates-only -out missing) = %d, want 1", got)
	}
}
