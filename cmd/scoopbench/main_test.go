package main

import "testing"

// The -fig help text and the registry must agree: every id advertised
// in the flag description exists, and no registered figure is missing
// from it.
func TestFigureRegistryComplete(t *testing.T) {
	wantIDs := []string{"3l", "3m", "3r", "4", "5", "sample", "loss", "root", "scale", "energy", "churn", "agg", "scale1k"}
	figs := figures()
	if len(figs) != len(wantIDs) {
		t.Fatalf("registry has %d figures, help text names %d", len(figs), len(wantIDs))
	}
	byID := map[string]figure{}
	for _, f := range figs {
		if f.run == nil {
			t.Fatalf("figure %q has no runner", f.id)
		}
		if f.name == "" {
			t.Fatalf("figure %q has no display name", f.id)
		}
		if _, dup := byID[f.id]; dup {
			t.Fatalf("duplicate figure id %q", f.id)
		}
		byID[f.id] = f
	}
	for _, id := range wantIDs {
		if _, ok := byID[id]; !ok {
			t.Fatalf("figure id %q advertised but not registered", id)
		}
	}
}

func TestMultiFlagAccumulates(t *testing.T) {
	var m multiFlag
	for _, v := range []string{"3l", "4", "energy"} {
		if err := m.Set(v); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.String(); got != "3l,4,energy" {
		t.Fatalf("multiFlag = %q", got)
	}
}
