// Command scoopbench regenerates the tables and figures of the Scoop
// paper's evaluation (§6). Each figure is a set of full simulations;
// -scale quick runs shortened single trials for a fast look, -scale
// full uses the paper's parameters (40-minute runs, 3 trials).
//
//	scoopbench                  # everything, quick
//	scoopbench -scale full      # everything, paper-scale (minutes of CPU)
//	scoopbench -fig 3m -fig 4   # selected figures
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"scoop/internal/exp"
)

type figure struct {
	id, name string
	run      func(exp.Scale, int64)
}

// figures is the registry of runnable figures, one per table/figure of
// the paper's evaluation (§6).
func figures() []figure {
	return []figure{
		{"3l", "Figure 3 (left)", func(s exp.Scale, sd int64) { t, _ := exp.Figure3Left(s, sd); fmt.Println(t) }},
		{"3m", "Figure 3 (middle)", func(s exp.Scale, sd int64) { t, _ := exp.Figure3Middle(s, sd); fmt.Println(t) }},
		{"3r", "Figure 3 (right)", func(s exp.Scale, sd int64) { t, _ := exp.Figure3Right(s, sd); fmt.Println(t) }},
		{"4", "Figure 4", func(s exp.Scale, sd int64) { t, _ := exp.Figure4(s, sd); fmt.Println(t) }},
		{"5", "Figure 5", func(s exp.Scale, sd int64) { t, _ := exp.Figure5(s, sd); fmt.Println(t) }},
		{"sample", "Sample-interval sweep", func(s exp.Scale, sd int64) { t, _ := exp.SampleIntervalSweep(s, sd); fmt.Println(t) }},
		{"loss", "Loss rates", func(s exp.Scale, sd int64) { t, _ := exp.LossRates(s, sd); fmt.Println(t) }},
		{"root", "Root skew", func(s exp.Scale, sd int64) { t, _ := exp.RootSkew(s, sd); fmt.Println(t) }},
		{"scale", "Scaling", func(s exp.Scale, sd int64) { t, _ := exp.Scaling(s, sd); fmt.Println(t) }},
		{"energy", "Energy / lifetimes", func(s exp.Scale, sd int64) { t, _ := exp.EnergyTable(s, sd); fmt.Println(t) }},
		{"churn", "Churn/drift (extension)", func(s exp.Scale, sd int64) { t, _ := exp.FigureChurn(s, sd); fmt.Println(t) }},
		{"agg", "Aggregate engine (extension)", func(s exp.Scale, sd int64) { t, _ := exp.FigureAgg(s, sd); fmt.Println(t) }},
		{"scale1k", "Scale tier ≤1000 nodes (extension)", func(s exp.Scale, sd int64) { t, _ := exp.FigureScale(s, sd); fmt.Println(t) }},
	}
}

func main() {
	var figs multiFlag
	flag.Var(&figs, "fig", "figure to run: 3l, 3m, 3r, 4, 5, sample, loss, root, scale, energy, churn, agg, scale1k (repeatable; default all)")
	scaleF := flag.String("scale", "quick", "experiment scale: quick or full")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	scale := exp.Quick
	switch *scaleF {
	case "quick":
	case "full":
		scale = exp.Full
	default:
		fmt.Fprintln(os.Stderr, "scoopbench: -scale must be quick or full")
		os.Exit(2)
	}

	all := figures()

	want := map[string]bool{}
	for _, f := range figs {
		want[f] = true
	}
	ran := 0
	for _, f := range all {
		if len(want) > 0 && !want[f.id] {
			continue
		}
		f.run(scale, *seed)
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "scoopbench: no matching figure; known ids:")
		for _, f := range all {
			fmt.Fprintf(os.Stderr, "  %-7s %s\n", f.id, f.name)
		}
		os.Exit(2)
	}
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }
