// Command scoopsweep runs a parameter-sweep grid — the cross-product
// of storage policy × topology × network size × link-loss rate ×
// churn rate × data drift × reindexing × query mix × workload source
// — in parallel on a bounded worker pool, writes a deterministic JSON
// artifact, and optionally gates the results against a committed
// baseline.
//
//	scoopsweep                                # default 24-cell grid
//	scoopsweep -parallel 8 -out sweep.json    # explicit artifact path
//	scoopsweep -baseline testdata/sweep-ci-baseline.json   # CI gate
//	scoopsweep -policies scoop,base -sizes 32,63,101 -loss 0,0.2
//	scoopsweep -policies scoop -churn 0,0.15 -drift 0,0.4 \
//	    -reindex on,off                       # adaptivity under dynamics
//	scoopsweep -policies scoop -querymix 0,0.5,1   # aggregate query engine
//	scoopsweep -policies scoop -loss 0.4 -querymix 0.5 \
//	    -faults none,blackout,campaign -retry off,on   # fault campaign
//	scoopsweep -scale 65,250,1000 -duration 10m    # scale tier (grid topology)
//
// The same -seed always produces byte-identical artifacts, whatever
// -parallel is, so committed sweeps are diffable performance records.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"scoop/internal/dynamics"
	"scoop/internal/netsim"
	"scoop/internal/policy"
	"scoop/internal/sweep"
)

// cli holds everything parsed from the command line.
type cli struct {
	grid     sweep.Grid
	parallel int
	out      string
	baseline string
	tol      float64
}

// parseArgs builds the sweep configuration from argv (without the
// program name). Usage and error text go to errw. Kept separate from
// main so tests can drive it.
func parseArgs(args []string, errw io.Writer) (cli, error) {
	fs := flag.NewFlagSet("scoopsweep", flag.ContinueOnError)
	fs.SetOutput(errw)

	name := fs.String("name", "default", "sweep name; also names the artifact sweep-<name>.json")
	policies := fs.String("policies", "scoop,local,hash,base", "comma-separated storage policies")
	topos := fs.String("topos", "uniform", "comma-separated topologies: uniform, testbed, grid")
	sizes := fs.String("sizes", "32,63", "comma-separated network sizes (incl. basestation)")
	loss := fs.String("loss", "0,0.1,0.2", "comma-separated link-loss rates in [0,1)")
	churn := fs.String("churn", "0", "comma-separated churn rates: fraction of nodes cycled per 90s round, each in [0,1)")
	drift := fs.String("drift", "0", "comma-separated data-drift totals: fraction of the domain the distribution walks mid-run, each in [-1,1]")
	reindex := fs.String("reindex", "on", "comma-separated reindexing modes: on, off (off freezes the first index)")
	reindexEvery := fs.Duration("reindex-every", 0, "index-rebuild epoch length (0: protocol default, 240s)")
	querymix := fs.String("querymix", "0", "comma-separated aggregate-query fractions in [0,1] (0: pure tuple workload)")
	faults := fs.String("faults", "", "comma-separated fault scenarios: blackout, partition, burst, baserestart, campaign; \"none\" for the fault-free cell (empty flag: fault-free only)")
	retry := fs.String("retry", "off", "comma-separated reliability-layer modes: off, on (on arms deadline retries + summary degradation)")
	scaleSizes := fs.String("scale", "", "comma-separated scale-tier sizes (e.g. 65,250,1000): adds scoop/hash/local cells on the grid topology at each size")
	sources := fs.String("sources", "real", "comma-separated workload sources")
	duration := fs.Duration("duration", 22*time.Minute, "virtual run length per cell")
	warmup := fs.Duration("warmup", 6*time.Minute, "virtual warm-up per cell")
	trials := fs.Int("trials", 1, "trials per cell")
	seed := fs.Int64("seed", 1, "base seed; per-cell seeds are derived from it")
	parallel := fs.Int("parallel", runtime.NumCPU(), "max cells running concurrently")
	regions := fs.Int("regions", 0, "parallel event-loop regions per cell network (0/1: serial; results are identical for every value)")
	out := fs.String("out", "", "artifact path (default sweep-<name>.json; \"-\" for none)")
	baseline := fs.String("baseline", "", "baseline artifact to gate against (empty: no gate)")
	tol := fs.Float64("tol", sweep.DefaultTolerance, "gate tolerance (relative regression; 0 gates strictly)")

	if err := fs.Parse(args); err != nil {
		return cli{}, err
	}
	if fs.NArg() > 0 {
		return cli{}, fmt.Errorf("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}

	g := sweep.Default()
	g.Name = *name
	g.Duration = netsim.Time(duration.Milliseconds())
	g.Warmup = netsim.Time(warmup.Milliseconds())
	g.Trials = *trials
	g.Seed = *seed
	g.Regions = *regions

	g.Policies = nil
	for _, p := range splitList(*policies) {
		g.Policies = append(g.Policies, policy.Name(p))
	}
	g.Topologies = splitList(*topos)
	g.Sources = splitList(*sources)

	var err error
	if g.Sizes, err = parseInts(*sizes); err != nil {
		return cli{}, fmt.Errorf("-sizes: %w", err)
	}
	if g.ScaleSizes, err = parseInts(*scaleSizes); err != nil {
		return cli{}, fmt.Errorf("-scale: %w", err)
	}
	for _, n := range append(append([]int(nil), g.Sizes...), g.ScaleSizes...) {
		if n < 2 || n > netsim.MaxNodes {
			return cli{}, fmt.Errorf("network size %d outside [2,%d]", n, netsim.MaxNodes)
		}
	}
	if g.LossRates, err = parseFloats(*loss); err != nil {
		return cli{}, fmt.Errorf("-loss: %w", err)
	}
	for _, l := range g.LossRates {
		if l < 0 || l >= 1 {
			return cli{}, fmt.Errorf("-loss: rate %g outside [0,1)", l)
		}
	}
	if g.ChurnRates, err = parseFloats(*churn); err != nil {
		return cli{}, fmt.Errorf("-churn: %w", err)
	}
	for _, c := range g.ChurnRates {
		if c < 0 || c >= 1 {
			return cli{}, fmt.Errorf("-churn: rate %g outside [0,1)", c)
		}
	}
	if g.DriftRates, err = parseFloats(*drift); err != nil {
		return cli{}, fmt.Errorf("-drift: %w", err)
	}
	for _, d := range g.DriftRates {
		if d < -1 || d > 1 {
			return cli{}, fmt.Errorf("-drift: total %g outside [-1,1]", d)
		}
	}
	g.Reindex = nil
	for _, m := range splitList(*reindex) {
		switch m {
		case "on":
			g.Reindex = append(g.Reindex, true)
		case "off":
			g.Reindex = append(g.Reindex, false)
		default:
			return cli{}, fmt.Errorf("-reindex: unknown mode %q (want on, off)", m)
		}
	}
	if g.QueryMixes, err = parseFloats(*querymix); err != nil {
		return cli{}, fmt.Errorf("-querymix: %w", err)
	}
	for _, m := range g.QueryMixes {
		if m < 0 || m > 1 {
			return cli{}, fmt.Errorf("-querymix: fraction %g outside [0,1]", m)
		}
	}
	g.Faults = nil
	known := make(map[string]bool)
	for _, s := range dynamics.FaultScenarios() {
		known[s] = true
	}
	for _, f := range splitList(*faults) {
		if f == "none" {
			f = ""
		}
		if f != "" && !known[f] {
			return cli{}, fmt.Errorf("-faults: unknown scenario %q (want one of %v, or none)",
				f, dynamics.FaultScenarios())
		}
		g.Faults = append(g.Faults, f)
	}
	g.Retry = nil
	for _, m := range splitList(*retry) {
		switch m {
		case "on":
			g.Retry = append(g.Retry, true)
		case "off":
			g.Retry = append(g.Retry, false)
		default:
			return cli{}, fmt.Errorf("-retry: unknown mode %q (want on, off)", m)
		}
	}
	if *reindexEvery < 0 {
		return cli{}, fmt.Errorf("-reindex-every: negative epoch %v", *reindexEvery)
	}
	g.ReindexInterval = netsim.Time(reindexEvery.Milliseconds())
	if g.Duration <= g.Warmup {
		return cli{}, fmt.Errorf("-duration %v must exceed -warmup %v", *duration, *warmup)
	}
	if *tol < 0 {
		return cli{}, fmt.Errorf("-tol: tolerance %g must be >= 0", *tol)
	}

	path := *out
	if path == "" {
		path = "sweep-" + g.Name + ".json"
	}
	return cli{grid: g, parallel: *parallel, out: path, baseline: *baseline, tol: *tol}, nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range splitList(s) {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// run executes the sweep and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	c, err := parseArgs(args, stderr)
	if err != nil {
		if err == flag.ErrHelp {
			return 0
		}
		fmt.Fprintln(stderr, "scoopsweep:", err)
		return 2
	}

	cells := c.grid.Cells()
	fmt.Fprintf(stderr, "scoopsweep: %d cells, %d workers, seed %d\n",
		len(cells), c.parallel, c.grid.Seed)
	start := time.Now() //scoop:allow walltime operator progress line on stderr, outside any simulation
	rep, err := sweep.Run(c.grid, sweep.Options{
		Parallel: c.parallel,
		Progress: func(r sweep.CellResult) {
			line := fmt.Sprintf("  [%3d/%d] %-40s msgs=%8.0f data=%.2f wall=%.0fms",
				r.Index+1, len(cells), r.Key(), r.Msgs, r.DataSuccess, r.WallMS)
			if r.Faults != "" || r.Retry {
				line += fmt.Sprintf(" compl=%.3f retries=%d", r.Completeness, r.Retries)
			}
			if r.ReindexBuilds > 0 {
				// Reindex cost: values recomputed vs total across the
				// cell's rebuilds, SPT sources relaxed, wall time.
				line += fmt.Sprintf(" reindex=%d/%dv/%dspt/%.0fms",
					r.ReindexRecomputed, r.ReindexValues, r.ReindexSPT, r.ReindexWallMS)
			}
			fmt.Fprintln(stderr, line)
		},
	})
	if err != nil {
		fmt.Fprintln(stderr, "scoopsweep:", err)
		return 1
	}
	//scoop:allow walltime operator progress line on stderr, outside any simulation
	fmt.Fprintf(stderr, "scoopsweep: grid done in %.1fs\n", time.Since(start).Seconds())

	if c.out != "-" {
		if err := sweep.WriteFile(c.out, rep); err != nil {
			fmt.Fprintln(stderr, "scoopsweep:", err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s (%d cells)\n", c.out, len(rep.Cells))
	}

	if c.baseline != "" {
		base, err := sweep.ReadFile(c.baseline)
		if err != nil {
			fmt.Fprintln(stderr, "scoopsweep:", err)
			return 1
		}
		if err := sweep.GateError(sweep.Gate(rep, base, c.tol)); err != nil {
			fmt.Fprintln(stderr, "scoopsweep:", err)
			return 1
		}
		fmt.Fprintf(stdout, "gate passed against %s (tolerance %.0f%%)\n",
			c.baseline, 100*c.tol)
	}
	return 0
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}
