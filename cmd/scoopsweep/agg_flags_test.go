package main

import (
	"io"
	"testing"
)

func TestParseArgsQueryMixAxis(t *testing.T) {
	c, err := parseArgs([]string{
		"-policies", "scoop", "-sizes", "16", "-loss", "0",
		"-querymix", "0,0.5,1",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	g := c.grid
	if len(g.QueryMixes) != 3 || g.QueryMixes[1] != 0.5 || g.QueryMixes[2] != 1 {
		t.Fatalf("query mixes: %v", g.QueryMixes)
	}
	if got := len(g.Cells()); got != 3 {
		t.Fatalf("grid expands to %d cells, want 3", got)
	}
}

func TestParseArgsQueryMixDefaults(t *testing.T) {
	c, err := parseArgs(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if g := c.grid; len(g.QueryMixes) != 1 || g.QueryMixes[0] != 0 {
		t.Fatalf("default query mix: %v", c.grid.QueryMixes)
	}
}

func TestParseArgsRejectsBadQueryMix(t *testing.T) {
	for _, args := range [][]string{
		{"-querymix", "1.5"},
		{"-querymix", "-0.1"},
		{"-querymix", "half"},
	} {
		if _, err := parseArgs(args, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
