package main

import (
	"io"
	"testing"
)

func TestParseArgsFaultsAxis(t *testing.T) {
	c, err := parseArgs([]string{
		"-policies", "scoop", "-sizes", "16", "-loss", "0.4",
		"-faults", "none,blackout,campaign", "-retry", "off,on",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	g := c.grid
	if len(g.Faults) != 3 || g.Faults[0] != "" || g.Faults[1] != "blackout" || g.Faults[2] != "campaign" {
		t.Fatalf("faults axis: %q", g.Faults)
	}
	if len(g.Retry) != 2 || g.Retry[0] || !g.Retry[1] {
		t.Fatalf("retry axis: %v", g.Retry)
	}
	if got := len(g.Cells()); got != 6 {
		t.Fatalf("grid expands to %d cells, want 6", got)
	}
}

func TestParseArgsFaultsScoopOnly(t *testing.T) {
	// Fault and retry cells exist for Scoop only; the other policies
	// keep their single fault-free cell.
	c, err := parseArgs([]string{
		"-policies", "scoop,local", "-sizes", "16", "-loss", "0",
		"-faults", "none,blackout", "-retry", "off,on",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.grid.Cells()); got != 5 {
		t.Fatalf("grid expands to %d cells, want 4 scoop + 1 local", got)
	}
}

func TestParseArgsFaultsDefaults(t *testing.T) {
	c, err := parseArgs(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.grid.Faults) != 0 {
		t.Fatalf("default faults axis: %q", c.grid.Faults)
	}
	if g := c.grid; len(g.Retry) != 1 || g.Retry[0] {
		t.Fatalf("default retry axis: %v", c.grid.Retry)
	}
}

func TestParseArgsRejectsBadFaults(t *testing.T) {
	for _, args := range [][]string{
		{"-faults", "meteor"},
		{"-retry", "sometimes"},
	} {
		if _, err := parseArgs(args, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
