package main

import (
	"io"
	"testing"
	"time"

	"scoop/internal/netsim"
)

func TestParseArgsDynamicsAxes(t *testing.T) {
	c, err := parseArgs([]string{
		"-policies", "scoop", "-sizes", "16", "-loss", "0",
		"-churn", "0,0.15", "-drift", "0,0.4", "-reindex", "on,off",
		"-reindex-every", "2m",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	g := c.grid
	if len(g.ChurnRates) != 2 || g.ChurnRates[1] != 0.15 {
		t.Fatalf("churn rates: %v", g.ChurnRates)
	}
	if len(g.DriftRates) != 2 || g.DriftRates[1] != 0.4 {
		t.Fatalf("drift rates: %v", g.DriftRates)
	}
	if len(g.Reindex) != 2 || !g.Reindex[0] || g.Reindex[1] {
		t.Fatalf("reindex axis: %v", g.Reindex)
	}
	if g.ReindexInterval != netsim.Time((2 * time.Minute).Milliseconds()) {
		t.Fatalf("reindex interval: %v", g.ReindexInterval)
	}
	if got := len(g.Cells()); got != 8 {
		t.Fatalf("grid expands to %d cells, want 8", got)
	}
}

func TestParseArgsDynamicsDefaults(t *testing.T) {
	c, err := parseArgs(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	g := c.grid
	if len(g.ChurnRates) != 1 || g.ChurnRates[0] != 0 {
		t.Fatalf("default churn: %v", g.ChurnRates)
	}
	if len(g.DriftRates) != 1 || g.DriftRates[0] != 0 {
		t.Fatalf("default drift: %v", g.DriftRates)
	}
	if len(g.Reindex) != 1 || !g.Reindex[0] {
		t.Fatalf("default reindex: %v", g.Reindex)
	}
}

func TestParseArgsRejectsBadDynamics(t *testing.T) {
	cases := [][]string{
		{"-churn", "1.0"},
		{"-churn", "-0.1"},
		{"-churn", "lots"},
		{"-drift", "1.5"},
		{"-drift", "-2"},
		{"-reindex", "maybe"},
		{"-reindex-every", "-1m"},
	}
	for _, args := range cases {
		if _, err := parseArgs(args, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
