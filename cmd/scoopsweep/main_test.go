package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scoop/internal/policy"
	"scoop/internal/sweep"
)

func TestParseArgsDefaults(t *testing.T) {
	c, err := parseArgs(nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.grid.Cells()); got < 24 {
		t.Fatalf("default grid has %d cells; want >= 24", got)
	}
	wantPolicies := []policy.Name{policy.Scoop, policy.Local, policy.Hash, policy.Base}
	if len(c.grid.Policies) != len(wantPolicies) {
		t.Fatalf("default policies: %v", c.grid.Policies)
	}
	for i, p := range wantPolicies {
		if c.grid.Policies[i] != p {
			t.Fatalf("default policies: %v", c.grid.Policies)
		}
	}
	if c.out != "sweep-default.json" {
		t.Fatalf("default artifact path %q", c.out)
	}
	if c.tol != sweep.DefaultTolerance {
		t.Fatalf("default tolerance %v", c.tol)
	}
}

func TestParseArgsGridSpec(t *testing.T) {
	c, err := parseArgs([]string{
		"-name", "ci", "-policies", "scoop,base", "-topos", "uniform,grid",
		"-sizes", "12,24", "-loss", "0,0.25", "-sources", "real,unique",
		"-duration", "8m", "-warmup", "2m", "-trials", "2",
		"-seed", "99", "-parallel", "3",
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	g := c.grid
	if len(g.Cells()) != 2*2*2*2*2 {
		t.Fatalf("grid expands to %d cells", len(g.Cells()))
	}
	if g.Seed != 99 || g.Trials != 2 || c.parallel != 3 {
		t.Fatalf("parsed grid: %+v parallel=%d", g, c.parallel)
	}
	if c.out != "sweep-ci.json" {
		t.Fatalf("artifact path %q", c.out)
	}
}

func TestParseArgsRejectsBadInput(t *testing.T) {
	cases := [][]string{
		{"-sizes", "twelve"},
		{"-loss", "0.1,nope"},
		{"-loss", "1.0"},
		{"-loss", "-0.2"},
		{"-tol", "-0.1"},
		{"-duration", "5m", "-warmup", "10m"},
		{"-no-such-flag"},
		{"stray-positional"},
	}
	for _, args := range cases {
		if _, err := parseArgs(args, io.Discard); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// End-to-end smoke test: a 1-cell sweep runs, writes its artifact, and
// gates cleanly against itself; a doctored baseline trips the gate.
func TestRunWritesArtifactAndGates(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation cell")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "sweep-smoke.json")
	args := []string{
		"-policies", "scoop", "-sizes", "12", "-loss", "0", "-sources", "real",
		"-duration", "4m", "-warmup", "1m", "-out", out, "-parallel", "1",
	}
	var stdout, stderr bytes.Buffer
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	rep, err := sweep.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 1 || rep.Cells[0].Msgs <= 0 {
		t.Fatalf("artifact: %+v", rep)
	}

	// Gate against itself: must pass.
	stdout.Reset()
	if code := run(append(args, "-baseline", out), &stdout, &stderr); code != 0 {
		t.Fatalf("self-gate failed (%d): %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "gate passed") {
		t.Fatalf("no gate confirmation in output: %q", stdout.String())
	}

	// Gate against a baseline demanding 20% fewer messages: must fail.
	rep.Cells[0].Msgs *= 0.8
	doctored := filepath.Join(dir, "sweep-doctored.json")
	if err := sweep.WriteFile(doctored, rep); err != nil {
		t.Fatal(err)
	}
	stderr.Reset()
	if code := run(append(args, "-baseline", doctored), &stdout, &stderr); code == 0 {
		t.Fatal("gate passed against a 20 percent tighter baseline")
	}
	if !strings.Contains(stderr.String(), "regression") {
		t.Fatalf("no regression report: %q", stderr.String())
	}
}

func TestRunRejectsMissingBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a simulation cell")
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-policies", "scoop", "-sizes", "12", "-loss", "0",
		"-duration", "4m", "-warmup", "1m", "-out", "-", "-parallel", "1",
		"-baseline", filepath.Join(t.TempDir(), "absent.json"),
	}, &stdout, &stderr)
	if code == 0 {
		t.Fatal("missing baseline accepted")
	}
	if _, err := os.Stat("sweep-default.json"); err == nil {
		t.Fatal("-out - still wrote an artifact in the working directory")
	}
}
